// ProblemDescriptor: the canonical identity of a solvable problem — grid
// dims, rank layout, scenario, nonsymmetry, solver kind, precision
// configuration, index width, tolerance. Two descriptors with equal
// canonical() strings denote bit-identically equal operators and solver
// configurations; the string is the OperatorCache key and its FNV-1a hash
// is the compact id requests/results report.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

#include "core/params.hpp"
#include "grid/scenario.hpp"
#include "precision/precision.hpp"

namespace hpgmx {

enum class SolverKind { Gmres, GmresIr, Cg };

[[nodiscard]] constexpr const char* solver_kind_name(SolverKind k) {
  switch (k) {
    case SolverKind::Gmres:
      return "gmres";
    case SolverKind::GmresIr:
      return "gmres_ir";
    case SolverKind::Cg:
      return "cg";
  }
  return "gmres_ir";
}

[[nodiscard]] inline std::optional<SolverKind> parse_solver_kind(
    std::string_view s) {
  if (s == "gmres") {
    return SolverKind::Gmres;
  }
  if (s == "gmres_ir" || s == "gmres-ir" || s == "ir") {
    return SolverKind::GmresIr;
  }
  if (s == "cg") {
    return SolverKind::Cg;
  }
  return std::nullopt;
}

struct ProblemDescriptor {
  // -- operator identity ----------------------------------------------------
  local_index_t nx = 16, ny = 16, nz = 16;  ///< per-rank grid
  int ranks = 1;
  int mg_levels = 4;
  ScenarioSpec scenario;
  double gamma = 0.0;
  std::uint64_t coloring_seed = 42;
  OptLevel opt = OptLevel::Optimized;
  IndexWidth index_width = IndexWidth::Auto;

  // -- solver configuration -------------------------------------------------
  SolverKind solver = SolverKind::GmresIr;
  Precision inner_precision = Precision::Fp32;  ///< GMRES-IR inner format
  PrecisionSchedule schedule;                   ///< empty = uniform inner
  double tol = 1e-9;
  int max_iters = 500;
  int restart = 30;
  bool fused = true;
  bool overlap = true;
  bool batched_reduce = true;
  /// Adaptive precision controller configuration. Part of the cache
  /// identity: an adaptive run and a static run of the same operator take
  /// different iterate trajectories, so their results must never alias.
  AdaptiveConfig adaptive;

  /// Canonical text form: a field-order-stable, %.17g-exact rendering.
  /// Equal strings ⟺ equal descriptors (the cache key).
  [[nodiscard]] std::string canonical() const {
    const std::string idx_name(index_width_name(index_width));
    const std::string prec_name(precision_name(inner_precision));
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "n=%dx%dx%d;ranks=%d;mg=%d;gamma=%.17g;seed=%llu;opt=%s;idx=%s;"
        "solver=%s;prec=%s;tol=%.17g;maxit=%d;restart=%d;f%d;o%d;b%d",
        static_cast<int>(nx), static_cast<int>(ny), static_cast<int>(nz),
        ranks, mg_levels, gamma,
        static_cast<unsigned long long>(coloring_seed), opt_level_name(opt),
        idx_name.c_str(), solver_kind_name(solver), prec_name.c_str(), tol,
        max_iters, restart, fused ? 1 : 0, overlap ? 1 : 0,
        batched_reduce ? 1 : 0);
    std::string s(buf);
    s += ";scenario=";
    s += scenario.to_string();
    s += ";schedule=";
    s += schedule.empty() ? "-" : schedule.to_string();
    s += ";adaptive=";
    s += adaptive.to_string();
    return s;
  }

  /// FNV-1a 64-bit over canonical(): the compact request/report id. Stable
  /// across runs and platforms; collisions are harmless for correctness
  /// (the cache keys on the full canonical string).
  [[nodiscard]] std::uint64_t hash() const {
    const std::string s = canonical();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ull;
    }
    return h;
  }

  /// BenchParams view of this descriptor — what the hierarchy builder and
  /// the Multigrid/solver constructors consume.
  [[nodiscard]] BenchParams to_bench_params() const {
    BenchParams p;
    p.nx = nx;
    p.ny = ny;
    p.nz = nz;
    p.mg_levels = mg_levels;
    p.scenario = scenario;
    p.gamma = gamma;
    p.coloring_seed = coloring_seed;
    p.opt = opt;
    p.index_width = index_width;
    p.inner_precision = inner_precision;
    p.set_precision_schedule(schedule);
    p.validation_tol = tol;
    p.validation_max_iters = max_iters;
    p.restart_length = restart;
    p.fused = fused;
    p.overlap = overlap;
    p.batched_reduce = batched_reduce;
    p.adaptive = adaptive;
    return p;
  }

  /// Descriptor for BenchParams `p` solved on `ranks` ranks — the bridge
  /// from the env-driven exhibit configuration into the service layer.
  [[nodiscard]] static ProblemDescriptor from_bench_params(
      const BenchParams& p, int num_ranks, SolverKind kind) {
    ProblemDescriptor d;
    d.nx = p.nx;
    d.ny = p.ny;
    d.nz = p.nz;
    d.ranks = num_ranks;
    d.mg_levels = p.mg_levels;
    d.scenario = p.scenario;
    d.gamma = p.gamma;
    d.coloring_seed = p.coloring_seed;
    d.opt = p.opt;
    d.index_width = p.index_width;
    d.solver = kind;
    d.inner_precision = p.inner_precision;
    d.schedule = p.precision_schedule;
    d.tol = p.validation_tol;
    d.max_iters = p.validation_max_iters;
    d.restart = p.restart_length;
    d.fused = p.fused;
    d.overlap = p.overlap;
    d.batched_reduce = p.batched_reduce;
    d.adaptive = p.adaptive;
    return d;
  }
};

}  // namespace hpgmx
