#include "service/solver_service.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "base/timer.hpp"
#include "blas/multivector.hpp"
#include "comm/comm_world.hpp"
#include "core/adaptive_ir.hpp"
#include "core/cg.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "precision/scale_guard.hpp"

namespace hpgmx {

namespace {

/// Promotion ladder the RetryPolicy climbs (matches AdaptiveConfig's
/// rung_order): fp16 → bf16 → fp32 → fp64; fp64 has nowhere left to go.
std::optional<Precision> next_wider(Precision p) {
  switch (p) {
    case Precision::Fp16:
      return Precision::Bf16;
    case Precision::Bf16:
      return Precision::Fp32;
    case Precision::Fp32:
      return Precision::Fp64;
    case Precision::Fp64:
      return std::nullopt;
  }
  return std::nullopt;
}

/// Severity for worst-status aggregation (higher = worse).
int status_severity(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return 0;
    case SolveStatus::Stagnated:
      return 1;
    case SolveStatus::NonFinite:
      return 2;
    case SolveStatus::Corrupted:
      return 3;
    case SolveStatus::DeadlineExceeded:
      return 4;
    case SolveStatus::Cancelled:
      return 5;
    case SolveStatus::Rejected:
      return 6;
  }
  return 6;
}

}  // namespace

SolveStatus aggregate_status(const std::vector<SolveResult>& rhs) {
  if (rhs.empty()) {
    return SolveStatus::Rejected;
  }
  SolveStatus worst = SolveStatus::Converged;
  for (const SolveResult& r : rhs) {
    if (status_severity(r.status) > status_severity(worst)) {
      worst = r.status;
    }
  }
  return worst;
}

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  p.enabled = env_int_or("HPGMX_RETRY", p.enabled ? 1 : 0) != 0;
  p.max_retries = static_cast<int>(
      env_int_or("HPGMX_RETRY_MAX", p.max_retries));
  HPGMX_CHECK_MSG(p.max_retries >= 0, "HPGMX_RETRY_MAX must be >= 0");
  return p;
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  cfg.workers = static_cast<int>(env_int_or("HPGMX_SERVICE_WORKERS",
                                            cfg.workers));
  HPGMX_CHECK_MSG(cfg.workers >= 1, "HPGMX_SERVICE_WORKERS must be >= 1");
  cfg.queue_capacity = static_cast<std::size_t>(env_int_or(
      "HPGMX_SERVICE_QUEUE", static_cast<std::int64_t>(cfg.queue_capacity)));
  HPGMX_CHECK_MSG(cfg.queue_capacity >= 1, "HPGMX_SERVICE_QUEUE must be >= 1");
  cfg.cache_entries = static_cast<std::size_t>(env_int_or(
      "HPGMX_SERVICE_CACHE", static_cast<std::int64_t>(cfg.cache_entries)));
  HPGMX_CHECK_MSG(cfg.cache_entries >= 1, "HPGMX_SERVICE_CACHE must be >= 1");
  cfg.cache_admit = env_double_or("HPGMX_CACHE_ADMIT", cfg.cache_admit);
  HPGMX_CHECK_MSG(cfg.cache_admit >= 0.0, "HPGMX_CACHE_ADMIT must be >= 0");
  cfg.retry = RetryPolicy::from_env();
  cfg.chaos = ChaosConfig::from_env();
  cfg.fault = FaultConfig::from_env();
  cfg.sdc = SdcPolicy::from_env();
  return cfg;
}

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_entries, cfg.cache_admit) {
  HPGMX_CHECK(cfg_.workers >= 1 && cfg_.queue_capacity >= 1);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() { shutdown(); }

std::future<ServiceResult> SolverService::rejected_future(
    const SolveRequest& req) {
  std::promise<ServiceResult> promise;
  ServiceResult res;
  res.descriptor_hash = req.desc.hash();
  res.status = SolveStatus::Rejected;
  promise.set_value(std::move(res));
  return promise.get_future();
}

std::future<ServiceResult> SolverService::submit(SolveRequest req) {
  if (req.num_rhs < 1) {
    // Structured rejection: the client gets a resolved ticket with status
    // rejected instead of a worker-side exception.
    return rejected_future(req);
  }
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return shutting_down_ || queue_.size() < cfg_.queue_capacity;
  });
  HPGMX_CHECK_MSG(!shutting_down_, "submit() on a shut-down SolverService");
  Item item;
  item.req = std::move(req);
  std::future<ServiceResult> ticket = item.promise.get_future();
  queue_.push_back(std::move(item));
  not_empty_.notify_one();
  return ticket;
}

std::optional<std::future<ServiceResult>> SolverService::try_submit(
    SolveRequest req, std::chrono::milliseconds timeout) {
  if (req.num_rhs < 1) {
    return rejected_future(req);
  }
  std::unique_lock<std::mutex> lock(mu_);
  const bool ready = not_full_.wait_for(lock, timeout, [&] {
    return shutting_down_ || queue_.size() < cfg_.queue_capacity;
  });
  if (!ready || shutting_down_) {
    return std::nullopt;  // timed out in backpressure, or shutting down
  }
  Item item;
  item.req = std::move(req);
  std::future<ServiceResult> ticket = item.promise.get_future();
  queue_.push_back(std::move(item));
  not_empty_.notify_one();
  return ticket;
}

void SolverService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  // Wake both worker threads (drain then exit) and any submitter blocked in
  // backpressure (observes shutting_down_ and throws / returns nullopt).
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();
  // Workers drain the queue before exiting; if one ever died mid-loop,
  // resolve the leftovers as cancelled so no promise is abandoned.
  std::deque<Item> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Item& item : leftovers) {
    ServiceResult res;
    res.descriptor_hash = item.req.desc.hash();
    res.status = SolveStatus::Cancelled;
    item.promise.set_value(std::move(res));
  }
}

std::size_t SolverService::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool SolverService::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

void SolverService::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and fully drained
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
    }
    try {
      item.promise.set_value(execute(item.req));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  }
}

void SolverService::run_attempt(
    const ProblemDescriptor& d, const SolveRequest& req,
    const std::shared_ptr<const OperatorCache::Entry>& entry,
    const SolveControl& control, ServiceResult& out) {
  const BenchParams params = d.to_bench_params();
  SolverOptions opts;
  opts.restart = d.restart;
  opts.max_iters = d.max_iters;
  opts.tol = d.tol;
  opts.fused_passes = d.fused;
  opts.batched_reductions = d.batched_reduce;
  opts.control = control;
  opts.sdc = cfg_.sdc;

  // Each request gets its own SPMD world: Self for one rank, in-process
  // threads otherwise — concurrent workers' worlds are fully independent.
  const std::unique_ptr<CommWorld> world = make_comm_world(
      d.ranks == 1 ? CommBackend::Self : CommBackend::Thread, d.ranks);
  std::vector<std::vector<SolveResult>> slot_results(
      static_cast<std::size_t>(world->local_count()));
  std::vector<std::vector<Precision>> slot_realized(
      static_cast<std::size_t>(world->local_count()));
  WallTimer solve_timer;
  world->execute([&](Comm& world_comm) {
    // Per-rank SDC harness: a deterministic value-fault injector (when
    // HPGMX_FAULT is armed) and a checksum/audit monitor (when HPGMX_AUDIT
    // is on). Halo faults are delivered through the chaos layer — it owns
    // the point-to-point receive path — so an armed halo target forces the
    // wrapper even with chaos itself off.
    std::unique_ptr<FaultInjector> injector;
    if (cfg_.fault.enabled()) {
      injector = std::make_unique<FaultInjector>(cfg_.fault,
                                                 world_comm.rank());
    }
    std::unique_ptr<ChaosComm> chaotic;
    if (cfg_.chaos.enabled() ||
        (injector != nullptr && injector->armed(FaultTarget::Halo))) {
      chaotic =
          std::make_unique<ChaosComm>(world_comm, cfg_.chaos, injector.get());
    }
    Comm& comm = chaotic != nullptr ? *chaotic : world_comm;
    SdcMonitor sdc_monitor;
    SdcMonitor* monitor = opts.sdc.detect ? &sdc_monitor : nullptr;
    const auto slot = static_cast<std::size_t>(world->slot_of(comm.rank()));
    const ProblemHierarchy& h =
        entry->hierarchy[static_cast<std::size_t>(comm.rank())];
    const AlignedVector<double>& b = h.levels[0].b;
    MultiVector<double> rhs(h.levels[0].a.num_rows, req.num_rhs);
    MultiVector<double> x(h.levels[0].a.num_rows, req.num_rhs);
    for (int j = 0; j < req.num_rhs; ++j) {
      set_column_scaled(rhs, j, std::span<const double>(b.data(), b.size()),
                        1.0 + req.rhs_spread * j);
    }
    const std::span<const double> level_max(entry->level_max.data(),
                                            entry->level_max.size());
    std::vector<SolveResult> res;
    switch (d.solver) {
      case SolverKind::Gmres: {
        Multigrid<double> mg(h, params);
        Gmres<double> solver(&mg.level_op(0), &mg, opts);
        if (monitor != nullptr) {
          solver.set_sdc(monitor);
        }
        solver.set_fault_injector(injector.get());
        res = solver.solve_many(comm, rhs, x);
        break;
      }
      case SolverKind::Cg: {
        HPGMX_CHECK_MSG(d.gamma == 0.0,
                        "cg requires the symmetric (gamma=0) operator");
        SymmetricMultigrid<double> mg(h, params);
        ConjugateGradient<double> solver(&mg.level_op(0), &mg, opts);
        if (monitor != nullptr) {
          solver.set_sdc(monitor);
        }
        solver.set_fault_injector(injector.get());
        res = solver.solve_many(comm, rhs, x);
        break;
      }
      case SolverKind::GmresIr: {
        // AdaptiveGmresIr builds the exact static stack this case used to
        // build inline when the controller is off (bit-identical iterates,
        // tests/test_adaptive.cpp asserts it) and climbs the precision
        // ladder when it is on. entry->level_max is already globally
        // reduced: no allreduce, and every rank's controller observes the
        // same rank-consistent sequence.
        AdaptiveGmresIr solver(h, params, opts, level_max);
        solver.set_sdc(monitor);
        solver.set_fault_injector(injector.get());
        res = solver.solve_many(comm, rhs, x);
        slot_realized[slot] = solver.controller().realized();
        break;
      }
    }
    slot_results[slot] = std::move(res);
  });
  out.solve_seconds += solve_timer.seconds();
  out.rhs = std::move(slot_results[0]);
  out.realized_precisions = std::move(slot_realized[0]);
  out.status = aggregate_status(out.rhs);

  AttemptRecord rec;
  rec.precision =
      d.solver == SolverKind::GmresIr ? d.inner_precision : Precision::Fp64;
  rec.status = out.status;
  for (const SolveResult& r : out.rhs) {
    rec.iterations += r.iterations;
    rec.recoveries += r.recoveries;
    rec.relative_residual =
        std::max(rec.relative_residual, r.relative_residual);
  }
  out.recoveries = rec.recoveries;  // of the served (last) attempt
  out.attempts.push_back(rec);
}

ServiceResult SolverService::execute(const SolveRequest& req) {
  ServiceResult out;
  out.descriptor_hash = req.desc.hash();
  if (req.num_rhs < 1) {
    out.status = SolveStatus::Rejected;  // structured, never a throw
    return out;
  }

  SolveControl control;
  control.cancel = req.cancel.get();
  control.deadline = req.deadline;

  WallTimer setup_timer;
  bool hit = false;
  const std::shared_ptr<const OperatorCache::Entry> entry =
      cache_.get_or_build(req.desc, &hit, &control);
  out.cache_hit = hit;
  out.setup_seconds = setup_timer.seconds();
  if (entry == nullptr) {
    // The deadline pre-expired or the token tripped before (or during) the
    // hierarchy build: skip the solve entirely, classified like a trip that
    // fired on the first reduction (cancellation outranks the deadline).
    // The attempt ledger still gets its zero-iteration record, so clients
    // observe the same shape a post-build trip produces.
    out.status = (req.cancel != nullptr && req.cancel->cancelled())
                     ? SolveStatus::Cancelled
                     : SolveStatus::DeadlineExceeded;
    AttemptRecord rec;
    rec.precision = req.desc.solver == SolverKind::GmresIr
                        ? req.desc.inner_precision
                        : Precision::Fp64;
    rec.status = out.status;
    out.attempts.push_back(rec);
    return out;
  }

  // Retry-with-promotion: the cached entry (per-rank double hierarchy +
  // globally reduced level maxima) is precision-independent, so a promoted
  // attempt reuses it directly — warm descriptor, cold iterate. The
  // deadline keeps ticking across attempts.
  ProblemDescriptor d = req.desc;
  for (int retry = 0;; ++retry) {
    run_attempt(d, req, entry, control, out);
    const bool recoverable = out.status == SolveStatus::NonFinite ||
                             out.status == SolveStatus::Stagnated;
    if (!cfg_.retry.enabled || retry >= cfg_.retry.max_retries ||
        !recoverable || d.solver != SolverKind::GmresIr ||
        d.adaptive.enabled) {
      break;
    }
    const std::optional<Precision> wider = next_wider(d.inner_precision);
    if (!wider.has_value()) {
      break;  // already at the top rung
    }
    d.inner_precision = *wider;
    // The retry runs the promoted format uniformly: a progressive schedule
    // tuned for the failed entry format would re-narrow the coarse levels.
    d.schedule = PrecisionSchedule{};
  }
  return out;
}

}  // namespace hpgmx
