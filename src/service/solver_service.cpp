#include "service/solver_service.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "base/timer.hpp"
#include "blas/multivector.hpp"
#include "comm/comm_world.hpp"
#include "core/adaptive_ir.hpp"
#include "core/cg.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "precision/scale_guard.hpp"

namespace hpgmx {

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  cfg.workers = static_cast<int>(env_int_or("HPGMX_SERVICE_WORKERS",
                                            cfg.workers));
  HPGMX_CHECK_MSG(cfg.workers >= 1, "HPGMX_SERVICE_WORKERS must be >= 1");
  cfg.queue_capacity = static_cast<std::size_t>(env_int_or(
      "HPGMX_SERVICE_QUEUE", static_cast<std::int64_t>(cfg.queue_capacity)));
  HPGMX_CHECK_MSG(cfg.queue_capacity >= 1, "HPGMX_SERVICE_QUEUE must be >= 1");
  cfg.cache_entries = static_cast<std::size_t>(env_int_or(
      "HPGMX_SERVICE_CACHE", static_cast<std::int64_t>(cfg.cache_entries)));
  HPGMX_CHECK_MSG(cfg.cache_entries >= 1, "HPGMX_SERVICE_CACHE must be >= 1");
  return cfg;
}

SolverService::SolverService(ServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_entries) {
  HPGMX_CHECK(cfg_.workers >= 1 && cfg_.queue_capacity >= 1);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() { shutdown(); }

std::future<ServiceResult> SolverService::submit(SolveRequest req) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return shutting_down_ || queue_.size() < cfg_.queue_capacity;
  });
  HPGMX_CHECK_MSG(!shutting_down_, "submit() on a shut-down SolverService");
  Item item;
  item.req = std::move(req);
  std::future<ServiceResult> ticket = item.promise.get_future();
  queue_.push_back(std::move(item));
  not_empty_.notify_one();
  return ticket;
}

void SolverService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();
}

std::size_t SolverService::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SolverService::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and fully drained
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
    }
    try {
      item.promise.set_value(execute(item.req));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  }
}

ServiceResult SolverService::execute(const SolveRequest& req) {
  const ProblemDescriptor& d = req.desc;
  HPGMX_CHECK_MSG(req.num_rhs >= 1, "request needs at least one RHS");
  ServiceResult out;
  out.descriptor_hash = d.hash();

  WallTimer setup_timer;
  bool hit = false;
  const std::shared_ptr<const OperatorCache::Entry> entry =
      cache_.get_or_build(d, &hit);
  out.cache_hit = hit;
  out.setup_seconds = setup_timer.seconds();

  const BenchParams params = d.to_bench_params();
  SolverOptions opts;
  opts.restart = d.restart;
  opts.max_iters = d.max_iters;
  opts.tol = d.tol;
  opts.fused_passes = d.fused;
  opts.batched_reductions = d.batched_reduce;

  // Each request gets its own SPMD world: Self for one rank, in-process
  // threads otherwise — concurrent workers' worlds are fully independent.
  const std::unique_ptr<CommWorld> world = make_comm_world(
      d.ranks == 1 ? CommBackend::Self : CommBackend::Thread, d.ranks);
  std::vector<std::vector<SolveResult>> slot_results(
      static_cast<std::size_t>(world->local_count()));
  std::vector<std::vector<Precision>> slot_realized(
      static_cast<std::size_t>(world->local_count()));
  WallTimer solve_timer;
  world->execute([&](Comm& comm) {
    const auto slot = static_cast<std::size_t>(world->slot_of(comm.rank()));
    const ProblemHierarchy& h =
        entry->hierarchy[static_cast<std::size_t>(comm.rank())];
    const AlignedVector<double>& b = h.levels[0].b;
    MultiVector<double> rhs(h.levels[0].a.num_rows, req.num_rhs);
    MultiVector<double> x(h.levels[0].a.num_rows, req.num_rhs);
    for (int j = 0; j < req.num_rhs; ++j) {
      set_column_scaled(rhs, j, std::span<const double>(b.data(), b.size()),
                        1.0 + req.rhs_spread * j);
    }
    const std::span<const double> level_max(entry->level_max.data(),
                                            entry->level_max.size());
    std::vector<SolveResult> res;
    switch (d.solver) {
      case SolverKind::Gmres: {
        Multigrid<double> mg(h, params);
        Gmres<double> solver(&mg.level_op(0), &mg, opts);
        res = solver.solve_many(comm, rhs, x);
        break;
      }
      case SolverKind::Cg: {
        HPGMX_CHECK_MSG(d.gamma == 0.0,
                        "cg requires the symmetric (gamma=0) operator");
        SymmetricMultigrid<double> mg(h, params);
        ConjugateGradient<double> solver(&mg.level_op(0), &mg, opts);
        res = solver.solve_many(comm, rhs, x);
        break;
      }
      case SolverKind::GmresIr: {
        // AdaptiveGmresIr builds the exact static stack this case used to
        // build inline when the controller is off (bit-identical iterates,
        // tests/test_adaptive.cpp asserts it) and climbs the precision
        // ladder when it is on. entry->level_max is already globally
        // reduced: no allreduce, and every rank's controller observes the
        // same rank-consistent sequence.
        AdaptiveGmresIr solver(h, params, opts, level_max);
        res = solver.solve_many(comm, rhs, x);
        slot_realized[slot] = solver.controller().realized();
        break;
      }
    }
    slot_results[slot] = std::move(res);
  });
  out.solve_seconds = solve_timer.seconds();
  out.rhs = std::move(slot_results[0]);
  out.realized_precisions = std::move(slot_realized[0]);
  return out;
}

}  // namespace hpgmx
