// OperatorCache: memoizes the expensive per-descriptor setup — problem
// generation, multigrid hierarchy, coloring/orderings, and the global
// per-level |A| maxima the precision machinery scales from — behind an LRU
// map keyed by the descriptor's canonical string. A cache hit hands every
// subsequent solve a shared immutable Entry whose matrices are bit-identical
// to a fresh build (generation is deterministic), turning the service's
// warm-path setup cost into a hash-map lookup.
//
// Thread safety: one mutex guards the map, the LRU list, and the stats.
// Builds run under the lock — intentionally: concurrent requests for the
// SAME descriptor must not build twice, and distinct-descriptor build
// overlap buys little on an oversubscribed worker pool. Entries are handed
// out as shared_ptr<const Entry>, so eviction never invalidates an
// in-flight solve.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/multigrid.hpp"
#include "service/descriptor.hpp"

namespace hpgmx {

struct OperatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< estimated resident bytes of cached hierarchies
};

/// Estimated resident bytes of one rank's hierarchy (matrix arrays + rhs +
/// injection maps; orderings counted via their permutation vectors).
[[nodiscard]] std::size_t hierarchy_bytes_estimate(const ProblemHierarchy& h);

class OperatorCache {
 public:
  struct Entry {
    ProblemDescriptor desc;
    /// One hierarchy per rank (slot r hosts global rank r in-process).
    std::vector<ProblemHierarchy> hierarchy;
    /// Per-level max|a_ij|, already reduced over all ranks — solvers can
    /// initialize ScaleGuards without an allreduce.
    std::vector<double> level_max;
    std::size_t bytes = 0;
    double build_seconds = 0.0;
  };

  explicit OperatorCache(std::size_t max_entries = 8)
      : max_entries_(max_entries) {}

  /// Return the cached entry for `desc`, building (and caching) it on a
  /// miss. `cache_hit`, when non-null, reports which path was taken.
  [[nodiscard]] std::shared_ptr<const Entry> get_or_build(
      const ProblemDescriptor& desc, bool* cache_hit = nullptr);

  /// Build an entry without touching the cache (the cold-path reference).
  [[nodiscard]] static std::shared_ptr<const Entry> build_entry(
      const ProblemDescriptor& desc);

  [[nodiscard]] OperatorCacheStats stats() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  /// Most-recently-used at the front; keys are canonical strings.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Slot> map_;
  OperatorCacheStats stats_;
};

}  // namespace hpgmx
