// OperatorCache: memoizes the expensive per-descriptor setup — problem
// generation, multigrid hierarchy, coloring/orderings, and the global
// per-level |A| maxima the precision machinery scales from — behind an LRU
// map keyed by the descriptor's canonical string. A cache hit hands every
// subsequent solve a shared immutable Entry whose matrices are bit-identical
// to a fresh build (generation is deterministic), turning the service's
// warm-path setup cost into a hash-map lookup.
//
// Thread safety: one mutex guards the map, the LRU list, and the stats.
// Builds run under the lock — intentionally: concurrent requests for the
// SAME descriptor must not build twice, and distinct-descriptor build
// overlap buys little on an oversubscribed worker pool. Entries are handed
// out as shared_ptr<const Entry>, so eviction never invalidates an
// in-flight solve.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cancel.hpp"
#include "core/multigrid.hpp"
#include "service/descriptor.hpp"

namespace hpgmx {

struct OperatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Builds served uncached because no resident entry was cheap enough to
  /// displace under the build-cost-aware admission policy.
  std::uint64_t admission_rejects = 0;
  /// LRU candidates passed over (too expensive to rebuild) while looking
  /// for an admission victim.
  std::uint64_t eviction_skips = 0;
  /// Builds skipped because the request's deadline had already expired or
  /// its cancel token had tripped before setup started.
  std::uint64_t cancelled_builds = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< estimated resident bytes of cached hierarchies
};

/// Estimated resident bytes of one rank's hierarchy (matrix arrays + rhs +
/// injection maps; orderings counted via their permutation vectors).
[[nodiscard]] std::size_t hierarchy_bytes_estimate(const ProblemHierarchy& h);

class OperatorCache {
 public:
  struct Entry {
    ProblemDescriptor desc;
    /// One hierarchy per rank (slot r hosts global rank r in-process).
    std::vector<ProblemHierarchy> hierarchy;
    /// Per-level max|a_ij|, already reduced over all ranks — solvers can
    /// initialize ScaleGuards without an allreduce.
    std::vector<double> level_max;
    std::size_t bytes = 0;
    double build_seconds = 0.0;
  };

  /// `admit_multiple` enables build-cost-aware admission (HPGMX_CACHE_ADMIT):
  /// with the cache full, a newly built entry is only admitted if some
  /// resident entry cost at most admit_multiple × the new entry's build time
  /// to construct — a burst of cheap one-off descriptors then cannot flush
  /// an expensive resident hierarchy. 0 (the default) is pure LRU.
  explicit OperatorCache(std::size_t max_entries = 8,
                         double admit_multiple = 0.0)
      : max_entries_(max_entries), admit_multiple_(admit_multiple) {}

  /// Return the cached entry for `desc`, building (and caching) it on a
  /// miss. `cache_hit`, when non-null, reports which path was taken.
  /// `control`, when non-null, is consulted before the expensive build: a
  /// pre-expired deadline or tripped cancel token skips it and returns
  /// nullptr (a cache hit is still served — it costs nothing).
  [[nodiscard]] std::shared_ptr<const Entry> get_or_build(
      const ProblemDescriptor& desc, bool* cache_hit = nullptr,
      const SolveControl* control = nullptr);

  /// Build an entry without touching the cache (the cold-path reference).
  /// With `control` attached, checks it between per-rank hierarchy builds
  /// and returns nullptr once tripped.
  [[nodiscard]] static std::shared_ptr<const Entry> build_entry(
      const ProblemDescriptor& desc, const SolveControl* control = nullptr);

  [[nodiscard]] OperatorCacheStats stats() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  double admit_multiple_ = 0.0;
  /// Most-recently-used at the front; keys are canonical strings.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Slot> map_;
  OperatorCacheStats stats_;
};

}  // namespace hpgmx
