#include "service/operator_cache.hpp"

#include <algorithm>

#include "base/timer.hpp"
#include "grid/problem.hpp"
#include "grid/process_grid.hpp"

namespace hpgmx {

std::size_t hierarchy_bytes_estimate(const ProblemHierarchy& h) {
  std::size_t bytes = 0;
  for (const Problem& lvl : h.levels) {
    bytes += lvl.a.values.size() * sizeof(double);
    bytes += lvl.a.col_idx.size() * sizeof(local_index_t);
    bytes += lvl.a.row_ptr.size() * sizeof(std::int64_t);
    bytes += lvl.a.diag.size() * sizeof(double);
    bytes += lvl.b.size() * sizeof(double);
  }
  for (const auto& c2f : h.c2f) {
    bytes += c2f.size() * sizeof(local_index_t);
  }
  return bytes;
}

namespace {

/// Local (single-thread) read of the control block: the build runs on one
/// service worker, so no rank-uniformity machinery is needed here.
bool control_tripped(const SolveControl* control) {
  return control != nullptr &&
         ((control->cancel != nullptr && control->cancel->cancelled()) ||
          control->deadline.expired());
}

}  // namespace

std::shared_ptr<const OperatorCache::Entry> OperatorCache::build_entry(
    const ProblemDescriptor& desc, const SolveControl* control) {
  HPGMX_CHECK_MSG(desc.ranks >= 1, "descriptor needs at least one rank");
  if (control_tripped(control)) {
    return nullptr;
  }
  WallTimer timer;
  auto entry = std::make_shared<Entry>();
  entry->desc = desc;
  const ProcessGrid pgrid = ProcessGrid::create(desc.ranks);
  ProblemParams pp;
  pp.nx = desc.nx;
  pp.ny = desc.ny;
  pp.nz = desc.nz;
  pp.gamma = desc.gamma;
  pp.scenario = desc.scenario;
  entry->hierarchy.reserve(static_cast<std::size_t>(desc.ranks));
  for (int r = 0; r < desc.ranks; ++r) {
    if (control_tripped(control)) {
      return nullptr;  // abandon the half-built entry mid-request
    }
    entry->hierarchy.push_back(build_hierarchy(generate_problem(pgrid, r, pp),
                                               desc.mg_levels,
                                               desc.coloring_seed));
    entry->bytes += hierarchy_bytes_estimate(entry->hierarchy.back());
  }
  // Reduce the per-level maxima over ranks here, once: every solve on this
  // entry then initializes its ScaleGuard/schedule scales collective-free
  // (all local dims are identical, so level counts agree across ranks).
  entry->level_max = hierarchy_level_max_abs(entry->hierarchy[0]);
  for (int r = 1; r < desc.ranks; ++r) {
    const std::vector<double> lm =
        hierarchy_level_max_abs(entry->hierarchy[static_cast<std::size_t>(r)]);
    HPGMX_CHECK(lm.size() == entry->level_max.size());
    for (std::size_t l = 0; l < lm.size(); ++l) {
      entry->level_max[l] = std::max(entry->level_max[l], lm[l]);
    }
  }
  entry->build_seconds = timer.seconds();
  return entry;
}

std::shared_ptr<const OperatorCache::Entry> OperatorCache::get_or_build(
    const ProblemDescriptor& desc, bool* cache_hit,
    const SolveControl* control) {
  std::string key = desc.canonical();
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++stats_.hits;
    if (cache_hit != nullptr) {
      *cache_hit = true;
    }
    return it->second.entry;  // hits are free: served even when tripped
  }
  ++stats_.misses;
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  std::shared_ptr<const Entry> entry = build_entry(desc, control);
  if (entry == nullptr) {
    ++stats_.cancelled_builds;
    return nullptr;  // deadline/cancel tripped before or during the build
  }
  // Build-cost-aware admission: with the cache full, scan from the LRU end
  // for a victim whose own build was at most admit_multiple_ × as expensive
  // as the candidate's. No such victim → serve the entry uncached; the
  // resident set is worth more than this entry.
  if (admit_multiple_ > 0.0 && map_.size() >= max_entries_ &&
      !map_.empty()) {
    auto victim_pos = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Slot& slot = map_.find(*it)->second;
      if (slot.entry->build_seconds <=
          admit_multiple_ * entry->build_seconds) {
        victim_pos = std::prev(it.base());
        break;
      }
      ++stats_.eviction_skips;
    }
    if (victim_pos == lru_.end()) {
      ++stats_.admission_rejects;
      return entry;
    }
    const auto vit = map_.find(*victim_pos);
    stats_.bytes -= vit->second.entry->bytes;
    map_.erase(vit);
    lru_.erase(victim_pos);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_.emplace(std::move(key), Slot{entry, lru_.begin()});
  stats_.bytes += entry->bytes;
  stats_.entries = map_.size();
  while (map_.size() > max_entries_ && map_.size() > 1) {
    const std::string& victim = lru_.back();
    const auto vit = map_.find(victim);
    stats_.bytes -= vit->second.entry->bytes;
    map_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
    stats_.entries = map_.size();
  }
  return entry;
}

OperatorCacheStats OperatorCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void OperatorCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

}  // namespace hpgmx
