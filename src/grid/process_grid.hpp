// 3D factorization of ranks, mirroring HPCG/HPG-MxP's processor grid.
//
// P ranks are factored into px × py × pz chosen as close to cubic as
// possible (minimizing communication surface); rank r maps to coordinates
// (r % px, (r / px) % py, r / (px*py)).
#pragma once

#include "base/error.hpp"

namespace hpgmx {

struct ProcCoords {
  int x = 0;
  int y = 0;
  int z = 0;
};

class ProcessGrid {
 public:
  /// Factor `size` ranks into the most cubic px*py*pz decomposition.
  static ProcessGrid create(int size);

  /// Explicit shape (tests, reproducing specific paper configurations).
  ProcessGrid(int px, int py, int pz) : px_(px), py_(py), pz_(pz) {
    HPGMX_CHECK(px >= 1 && py >= 1 && pz >= 1);
  }

  [[nodiscard]] int px() const { return px_; }
  [[nodiscard]] int py() const { return py_; }
  [[nodiscard]] int pz() const { return pz_; }
  [[nodiscard]] int size() const { return px_ * py_ * pz_; }

  [[nodiscard]] ProcCoords coords_of(int rank) const {
    HPGMX_CHECK(rank >= 0 && rank < size());
    return {rank % px_, (rank / px_) % py_, rank / (px_ * py_)};
  }

  [[nodiscard]] int rank_of(ProcCoords c) const {
    HPGMX_CHECK(contains(c));
    return c.x + px_ * (c.y + py_ * c.z);
  }

  [[nodiscard]] bool contains(ProcCoords c) const {
    return c.x >= 0 && c.x < px_ && c.y >= 0 && c.y < py_ && c.z >= 0 &&
           c.z < pz_;
  }

 private:
  int px_;
  int py_;
  int pz_;
};

}  // namespace hpgmx
