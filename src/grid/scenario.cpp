#include "grid/scenario.hpp"

#include <cstdio>

#include "base/options.hpp"

namespace hpgmx {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::Poisson:
      return "poisson";
    case Scenario::ConvDiff:
      return "convdiff";
    case Scenario::Aniso:
      return "aniso";
    case Scenario::Jump:
      return "jump";
    case Scenario::Stretched:
      return "stretched";
  }
  return "poisson";
}

std::optional<Scenario> parse_scenario(std::string_view s) {
  for (const Scenario sc : scenario_catalog()) {
    if (s == scenario_name(sc)) {
      return sc;
    }
  }
  if (s == "convection-diffusion") {
    return Scenario::ConvDiff;
  }
  return std::nullopt;
}

const std::vector<Scenario>& scenario_catalog() {
  static const std::vector<Scenario> catalog{
      Scenario::Poisson, Scenario::ConvDiff, Scenario::Aniso, Scenario::Jump,
      Scenario::Stretched};
  return catalog;
}

ScenarioSpec ScenarioSpec::coarsened() const {
  ScenarioSpec c = *this;
  c.jump_period = std::max<global_index_t>(1, jump_period / 2);
  c.stretch = stretch * stretch;
  return c;
}

std::string ScenarioSpec::to_string() const {
  char buf[128];
  switch (kind) {
    case Scenario::Aniso:
      std::snprintf(buf, sizeof(buf), "aniso(ey=%.17g,ez=%.17g)", aniso_eps_y,
                    aniso_eps_z);
      return buf;
    case Scenario::Jump:
      std::snprintf(buf, sizeof(buf), "jump(ratio=%.17g,period=%lld)",
                    jump_ratio, static_cast<long long>(jump_period));
      return buf;
    case Scenario::Stretched:
      std::snprintf(buf, sizeof(buf), "stretched(s=%.17g)", stretch);
      return buf;
    default:
      return scenario_name(kind);
  }
}

ScenarioSpec ScenarioSpec::from_env() {
  ScenarioSpec spec;
  if (const auto name = env_string("HPGMX_SCENARIO"); name.has_value()) {
    const auto parsed = parse_scenario(*name);
    HPGMX_CHECK_MSG(parsed.has_value(),
                    "HPGMX_SCENARIO='"
                        << *name
                        << "' is not a registered scenario "
                           "(poisson|convdiff|aniso|jump|stretched)");
    spec.kind = *parsed;
  }
  spec.aniso_eps_y = env_double_or("HPGMX_ANISO_EPSY", spec.aniso_eps_y);
  spec.aniso_eps_z = env_double_or("HPGMX_ANISO_EPSZ", spec.aniso_eps_z);
  spec.jump_ratio = env_double_or("HPGMX_JUMP_RATIO", spec.jump_ratio);
  spec.jump_period = static_cast<global_index_t>(
      env_int_or("HPGMX_JUMP_PERIOD", spec.jump_period));
  HPGMX_CHECK_MSG(spec.jump_period >= 1, "HPGMX_JUMP_PERIOD must be >= 1");
  spec.stretch = env_double_or("HPGMX_STRETCH", spec.stretch);
  return spec;
}

}  // namespace hpgmx
