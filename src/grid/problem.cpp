#include "grid/problem.hpp"

#include <algorithm>
#include <array>

namespace hpgmx {

namespace {

/// Global-coordinate range [lo, hi) of the overlap between an owner's box
/// and a reader's box expanded by one layer, along one dimension.
struct Range {
  global_index_t lo = 0;
  global_index_t hi = 0;
  [[nodiscard]] global_index_t extent() const { return hi - lo; }
};

/// Along one dimension: the layer of `owner`'s points that `reader` (offset
/// d = owner_coord - reader_coord ∈ {-1,0,1}) can see through a radius-1
/// stencil.
Range shared_layer(global_index_t owner_lo, global_index_t owner_n, int d) {
  if (d == 0) {
    return {owner_lo, owner_lo + owner_n};
  }
  if (d == 1) {
    // Owner sits on the positive side of the reader: reader sees the
    // owner's first layer.
    return {owner_lo, owner_lo + 1};
  }
  // Owner on the negative side: reader sees the owner's last layer.
  return {owner_lo + owner_n - 1, owner_lo + owner_n};
}

/// 3D recv/send box between a pair of ranks.
struct OverlapBox {
  Range x, y, z;
  [[nodiscard]] global_index_t count() const {
    return x.extent() * y.extent() * z.extent();
  }
  [[nodiscard]] bool contains(global_index_t gi, global_index_t gj,
                              global_index_t gk) const {
    return gi >= x.lo && gi < x.hi && gj >= y.lo && gj < y.hi && gk >= z.lo &&
           gk < z.hi;
  }
  /// Position of a point within the box in global-id (k,j,i ascending) order.
  [[nodiscard]] local_index_t index_of(global_index_t gi, global_index_t gj,
                                       global_index_t gk) const {
    return static_cast<local_index_t>((gi - x.lo) +
                                      x.extent() * ((gj - y.lo) +
                                                    y.extent() * (gk - z.lo)));
  }
};

struct NeighborGeometry {
  int rank = -1;
  OverlapBox recv_box;  ///< neighbor-owned points this rank reads
  OverlapBox send_box;  ///< this-rank-owned points the neighbor reads
};

/// All valid stencil neighbors of `rank`, sorted by neighbor rank so both
/// sides of every pair order the exchange identically.
std::vector<NeighborGeometry> neighbor_geometry(const ProcessGrid& pgrid,
                                                int rank,
                                                const ProblemParams& p) {
  const ProcCoords me = pgrid.coords_of(rank);
  std::vector<NeighborGeometry> out;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) {
          continue;
        }
        const ProcCoords nb{me.x + dx, me.y + dy, me.z + dz};
        if (!pgrid.contains(nb)) {
          continue;
        }
        NeighborGeometry g;
        g.rank = pgrid.rank_of(nb);
        // Neighbor-owned layer I read: offset of owner (them) w.r.t. reader
        // (me) is (dx,dy,dz).
        g.recv_box = {
            shared_layer(static_cast<global_index_t>(nb.x) * p.nx, p.nx, dx),
            shared_layer(static_cast<global_index_t>(nb.y) * p.ny, p.ny, dy),
            shared_layer(static_cast<global_index_t>(nb.z) * p.nz, p.nz, dz)};
        // My layer they read: offset of owner (me) w.r.t. reader (them) is
        // (-dx,-dy,-dz).
        g.send_box = {
            shared_layer(static_cast<global_index_t>(me.x) * p.nx, p.nx, -dx),
            shared_layer(static_cast<global_index_t>(me.y) * p.ny, p.ny, -dy),
            shared_layer(static_cast<global_index_t>(me.z) * p.nz, p.nz, -dz)};
        out.push_back(g);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborGeometry& a, const NeighborGeometry& b) {
              return a.rank < b.rank;
            });
  return out;
}

}  // namespace

Problem generate_problem(const ProcessGrid& pgrid, int rank,
                         const ProblemParams& p) {
  HPGMX_CHECK_MSG(p.nx >= 2 && p.ny >= 2 && p.nz >= 2,
                  "local grid must be at least 2^3");
  Problem prob;
  prob.pgrid = pgrid;
  prob.rank = rank;
  prob.gamma = p.gamma;
  prob.scenario = p.scenario;

  const ProcCoords me = pgrid.coords_of(rank);
  GridBox& box = prob.box;
  box.nx = p.nx;
  box.ny = p.ny;
  box.nz = p.nz;
  box.ox = static_cast<global_index_t>(me.x) * p.nx;
  box.oy = static_cast<global_index_t>(me.y) * p.ny;
  box.oz = static_cast<global_index_t>(me.z) * p.nz;
  box.gnx = static_cast<global_index_t>(pgrid.px()) * p.nx;
  box.gny = static_cast<global_index_t>(pgrid.py()) * p.ny;
  box.gnz = static_cast<global_index_t>(pgrid.pz()) * p.nz;

  // -- halo pattern ---------------------------------------------------------
  const std::vector<NeighborGeometry> nbrs = neighbor_geometry(pgrid, rank, p);
  const local_index_t n_owned = box.num_local();
  HaloPattern& halo = prob.halo;
  halo.n_owned = n_owned;
  halo.n_halo = 0;
  halo.neighbors.reserve(nbrs.size());
  for (const NeighborGeometry& g : nbrs) {
    HaloNeighbor hn;
    hn.rank = g.rank;
    hn.recv_offset = halo.n_halo;
    hn.recv_count = static_cast<local_index_t>(g.recv_box.count());
    halo.n_halo += hn.recv_count;
    // Send indices: my owned points inside the send box, enumerated in
    // global-id order (k, j, i ascending).
    hn.send_indices.reserve(static_cast<std::size_t>(g.send_box.count()));
    for (global_index_t gk = g.send_box.z.lo; gk < g.send_box.z.hi; ++gk) {
      for (global_index_t gj = g.send_box.y.lo; gj < g.send_box.y.hi; ++gj) {
        for (global_index_t gi = g.send_box.x.lo; gi < g.send_box.x.hi; ++gi) {
          hn.send_indices.push_back(box.local_id(
              static_cast<local_index_t>(gi - box.ox),
              static_cast<local_index_t>(gj - box.oy),
              static_cast<local_index_t>(gk - box.oz)));
        }
      }
    }
    halo.neighbors.push_back(std::move(hn));
  }

  // Halo local id of an external global point: find its owner among the
  // sorted neighbors, then its slot in that neighbor's recv box.
  const auto halo_id = [&](global_index_t gi, global_index_t gj,
                           global_index_t gk) -> local_index_t {
    for (std::size_t n = 0; n < nbrs.size(); ++n) {
      if (nbrs[n].recv_box.contains(gi, gj, gk)) {
        return n_owned + halo.neighbors[n].recv_offset +
               nbrs[n].recv_box.index_of(gi, gj, gk);
      }
    }
    HPGMX_CHECK_MSG(false, "external point has no owning neighbor");
    return -1;
  };

  // -- matrix ---------------------------------------------------------------
  // Scenario edge weights: w ≡ 1 (Poisson/ConvDiff) keeps the paper's
  // diag-26/off-diag-(−1∓γ) values bit-for-bit; other scenarios scale each
  // coupling while the diagonal stays the sum of all 26 weights (weak
  // diagonal dominance, strict at the global boundary).
  const ScenarioField field(p.scenario, box.gnx, box.gny, box.gnz);
  const local_index_t num_cols = n_owned + halo.n_halo;
  CsrBuilder<double> builder(n_owned, num_cols, n_owned,
                             static_cast<std::int64_t>(n_owned) * 27);
  prob.b.assign(static_cast<std::size_t>(n_owned), 0.0);

  for (local_index_t k = 0; k < box.nz; ++k) {
    for (local_index_t j = 0; j < box.ny; ++j) {
      for (local_index_t i = 0; i < box.nx; ++i) {
        const global_index_t gi = box.ox + i;
        const global_index_t gj = box.oy + j;
        const global_index_t gk = box.oz + k;
        const global_index_t my_gid = box.global_id(gi, gj, gk);
        double row_sum = 0.0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              const global_index_t ci = gi + di;
              const global_index_t cj = gj + dj;
              const global_index_t ck = gk + dk;
              if (ci < 0 || ci >= box.gnx || cj < 0 || cj >= box.gny ||
                  ck < 0 || ck >= box.gnz) {
                continue;  // outside the global domain: no entry
              }
              double value;
              if (di == 0 && dj == 0 && dk == 0) {
                value = field.diagonal(gi, gj, gk);
              } else {
                const global_index_t col_gid = box.global_id(ci, cj, ck);
                const double w = field.coupling(gi, gj, gk, di, dj, dk);
                value = (col_gid > my_gid) ? -(w * (1.0 + p.gamma))
                                           : -(w * (1.0 - p.gamma));
              }
              local_index_t col;
              const bool owned = ci >= box.ox && ci < box.ox + box.nx &&
                                 cj >= box.oy && cj < box.oy + box.ny &&
                                 ck >= box.oz && ck < box.oz + box.nz;
              if (owned) {
                col = box.local_id(static_cast<local_index_t>(ci - box.ox),
                                   static_cast<local_index_t>(cj - box.oy),
                                   static_cast<local_index_t>(ck - box.oz));
              } else {
                col = halo_id(ci, cj, ck);
              }
              builder.push(col, value);
              row_sum += value;
            }
          }
        }
        builder.finish_row();
        // b = A·1: the row sum (halo entries of the ones vector are 1 too).
        prob.b[static_cast<std::size_t>(box.local_id(i, j, k))] = row_sum;
      }
    }
  }
  prob.a = builder.build();
  return prob;
}

CoarseLevel coarsen(const Problem& fine) {
  const GridBox& fb = fine.box;
  HPGMX_CHECK_MSG(fb.nx % 2 == 0 && fb.ny % 2 == 0 && fb.nz % 2 == 0,
                  "coarsening requires even local dims, got "
                      << fb.nx << "x" << fb.ny << "x" << fb.nz);
  ProblemParams cp;
  cp.nx = fb.nx / 2;
  cp.ny = fb.ny / 2;
  cp.nz = fb.nz / 2;
  cp.gamma = fine.gamma;
  cp.scenario = fine.scenario.coarsened();

  CoarseLevel level;
  level.problem = generate_problem(fine.pgrid, fine.rank, cp);
  level.c2f.resize(static_cast<std::size_t>(level.problem.box.num_local()));
  for (local_index_t k = 0; k < cp.nz; ++k) {
    for (local_index_t j = 0; j < cp.ny; ++j) {
      for (local_index_t i = 0; i < cp.nx; ++i) {
        level.c2f[static_cast<std::size_t>(
            level.problem.box.local_id(i, j, k))] =
            fb.local_id(2 * i, 2 * j, 2 * k);
      }
    }
  }
  return level;
}

}  // namespace hpgmx
