#include "grid/process_grid.hpp"

#include <limits>

namespace hpgmx {

ProcessGrid ProcessGrid::create(int size) {
  HPGMX_CHECK_MSG(size >= 1, "world size must be positive");
  // Enumerate all factor triples; pick the one minimizing the surface metric
  // (sum of pairwise products), i.e. closest to a cube. Ties broken toward
  // px >= py >= pz for determinism.
  int best_x = size;
  int best_y = 1;
  int best_z = 1;
  long long best_surface = std::numeric_limits<long long>::max();
  for (int z = 1; z <= size; ++z) {
    if (size % z != 0) {
      continue;
    }
    const int yz = size / z;
    for (int y = 1; y <= yz; ++y) {
      if (yz % y != 0) {
        continue;
      }
      const int x = yz / y;
      const long long surface = static_cast<long long>(x) * y +
                                static_cast<long long>(y) * z +
                                static_cast<long long>(x) * z;
      if (surface < best_surface ||
          (surface == best_surface &&
           (x > best_x || (x == best_x && y > best_y)))) {
        best_surface = surface;
        best_x = x;
        best_y = y;
        best_z = z;
      }
    }
  }
  return ProcessGrid(best_x, best_y, best_z);
}

}  // namespace hpgmx
