// Scenario generator library: named coefficient fields for the 27-point
// stencil beyond the uniform Poisson/convection-diffusion benchmark matrix.
//
// Every scenario assigns a symmetric coupling weight w > 0 to each grid edge
// (cell, cell+offset); the assembled row is
//
//   a(me, nb) = -w(me, nb) · (1 ± γ)      (± by global-index order, the
//                                          benchmark's nonsymmetry knob)
//   a(me, me) =  Σ w(me, nb)              (sum over ALL 26 stencil offsets,
//                                          including out-of-domain neighbors)
//
// so γ = 0 keeps every operator symmetric and weakly diagonally dominant
// (strictly at the global boundary, hence SPD — CG-safe), and the default
// Poisson weights (w ≡ 1) reproduce the paper's diag-26/off-diag-(−1∓γ)
// matrix bit-for-bit. The catalog follows the scenarios the spectral-element
// mixed-precision literature identifies as low-precision stress tests:
//
//   poisson    uniform w = 1 (the benchmark matrix)
//   convdiff   same weights; named intent for a γ > 0 upwind bias
//   aniso      anisotropic diffusion: y/z couplings scaled by ε_y, ε_z
//   jump       discontinuous coefficients: checkerboard of period-P blocks
//              with κ ∈ {1, ratio}, edge weight = ½(κ_a + κ_b)
//   stretched  geometrically stretched x-spacing h(i) = s^i, edge weight
//              2/(h(m)+h(m+1)) — a graded boundary-layer grid
//
// Scenarios are registered by name so problem descriptors (the service
// layer) and HPGMX_SCENARIO can request them, and re-discretize under
// geometric coarsening via `ScenarioSpec::coarsened()`.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "base/types.hpp"

namespace hpgmx {

enum class Scenario { Poisson, ConvDiff, Aniso, Jump, Stretched };

[[nodiscard]] const char* scenario_name(Scenario s);
[[nodiscard]] std::optional<Scenario> parse_scenario(std::string_view s);
/// Every registered scenario, in catalog order (exhibits iterate this).
[[nodiscard]] const std::vector<Scenario>& scenario_catalog();

/// A scenario plus its shape parameters. Defaults are exact binary
/// fractions so demoted (fp32/bf16/fp16) operators round identically
/// across platforms.
struct ScenarioSpec {
  Scenario kind = Scenario::Poisson;
  double aniso_eps_y = 0.125;    ///< aniso: y-coupling scale ε_y
  double aniso_eps_z = 0.0625;   ///< aniso: z-coupling scale ε_z
  double jump_ratio = 1024.0;    ///< jump: high-block coefficient κ
  global_index_t jump_period = 8;///< jump: checkerboard block edge (cells)
  double stretch = 1.03125;      ///< stretched: spacing ratio s (= 1+1/32)

  /// The spec the geometrically coarsened (2x) grid re-discretizes with:
  /// block periods halve with the grid and the spacing ratio squares (the
  /// coarse cell i sits at the fine cell 2i), so coarse operators sample
  /// the same continuous coefficient field.
  [[nodiscard]] ScenarioSpec coarsened() const;

  /// Canonical text form ("jump(ratio=...,period=...)") — stable across
  /// runs, used verbatim inside descriptor cache keys.
  [[nodiscard]] std::string to_string() const;

  /// HPGMX_SCENARIO (name) plus HPGMX_ANISO_EPSY/EPSZ, HPGMX_JUMP_RATIO/
  /// PERIOD and HPGMX_STRETCH shape overrides.
  [[nodiscard]] static ScenarioSpec from_env();

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Evaluates a spec's coupling weights on a concrete global grid. Built once
/// per generate_problem call; the hot accessors are inline table lookups.
class ScenarioField {
 public:
  ScenarioField(const ScenarioSpec& spec, global_index_t gnx,
                global_index_t gny, global_index_t gnz)
      : spec_(spec), gnx_(gnx), gny_(gny), gnz_(gnz) {
    const double wy = spec.kind == Scenario::Aniso ? spec.aniso_eps_y : 1.0;
    const double wz = spec.kind == Scenario::Aniso ? spec.aniso_eps_z : 1.0;
    double sum = 0.0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          const double w = (dj != 0 ? wy : 1.0) * (dk != 0 ? wz : 1.0);
          w_[offset_index(di, dj, dk)] = w;
          if (di != 0 || dj != 0 || dk != 0) {
            sum += w;
          }
        }
      }
    }
    invariant_ =
        spec.kind != Scenario::Jump && spec.kind != Scenario::Stretched;
    diag_const_ = sum;
    if (spec.kind == Scenario::Stretched) {
      HPGMX_CHECK_MSG(spec.stretch > 0, "stretched: ratio must be positive");
      // fx_[m+1] = 2/(h(m)+h(m+1)) for the x-edge between cells m and m+1,
      // m ∈ [-1, gnx-1] (the ±1 slots serve boundary diagonal terms).
      fx_.resize(static_cast<std::size_t>(gnx) + 1);
      for (global_index_t m = -1; m < gnx; ++m) {
        const double h0 = std::pow(spec.stretch, static_cast<double>(m));
        const double h1 = std::pow(spec.stretch, static_cast<double>(m + 1));
        fx_[static_cast<std::size_t>(m + 1)] = 2.0 / (h0 + h1);
      }
    }
  }

  /// Symmetric edge weight between (gi,gj,gk) and its (di,dj,dk) neighbor:
  /// coupling(a, d) == coupling(a+d, -d) for every in-domain pair.
  [[nodiscard]] double coupling(global_index_t gi, global_index_t gj,
                                global_index_t gk, int di, int dj,
                                int dk) const {
    switch (spec_.kind) {
      case Scenario::Jump:
        return 0.5 * (kappa(gi, gj, gk) + kappa(gi + di, gj + dj, gk + dk));
      case Scenario::Stretched:
        return di == 0 ? 1.0
                       : fx_[static_cast<std::size_t>(
                             std::min(gi, gi + di) + 1)];
      default:
        return w_[offset_index(di, dj, dk)];
    }
  }

  /// Row diagonal: the sum of all 26 couplings, out-of-domain neighbors
  /// included — the source of (strict, at the boundary) diagonal dominance.
  [[nodiscard]] double diagonal(global_index_t gi, global_index_t gj,
                                global_index_t gk) const {
    if (invariant_) {
      return diag_const_;
    }
    double sum = 0.0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0 && dk == 0) {
            continue;
          }
          sum += coupling(gi, gj, gk, di, dj, dk);
        }
      }
    }
    return sum;
  }

 private:
  [[nodiscard]] static std::size_t offset_index(int di, int dj, int dk) {
    return static_cast<std::size_t>((di + 1) + 3 * (dj + 1) + 9 * (dk + 1));
  }

  /// Block coefficient of the jump checkerboard; out-of-domain coordinates
  /// clamp to the nearest cell so boundary diagonals see the adjacent block.
  [[nodiscard]] double kappa(global_index_t gi, global_index_t gj,
                             global_index_t gk) const {
    const global_index_t ci = std::clamp<global_index_t>(gi, 0, gnx_ - 1);
    const global_index_t cj = std::clamp<global_index_t>(gj, 0, gny_ - 1);
    const global_index_t ck = std::clamp<global_index_t>(gk, 0, gnz_ - 1);
    const global_index_t p = spec_.jump_period;
    const global_index_t parity = (ci / p + cj / p + ck / p) % 2;
    return parity != 0 ? spec_.jump_ratio : 1.0;
  }

  ScenarioSpec spec_;
  global_index_t gnx_, gny_, gnz_;
  double w_[27] = {};
  double diag_const_ = 0.0;
  bool invariant_ = true;
  std::vector<double> fx_;
};

}  // namespace hpgmx
