// HPG-MxP synthetic problem generation (paper §2–§3).
//
// The benchmark matrix is a 27-point stencil on a uniform 3D Cartesian grid
// of a cube: every interior row has diagonal 26 and off-diagonals −1, making
// the matrix weakly diagonally dominant; global-boundary rows simply have
// fewer off-diagonals. An optional nonsymmetry parameter γ perturbs
// off-diagonals to −1−γ (neighbor with greater global index) / −1+γ
// (smaller), preserving weak diagonal dominance for γ < 1 — the benchmark's
// nonsymmetric variant.
//
// Domain decomposition follows HPCG: the global Nx×Ny×Nz grid is split
// uniformly over a px×py×pz process grid; every rank owns an identical
// nx×ny×nz box (global dim = local dim × process dim). Ownership of any
// point is therefore computable locally, which lets both sides of a halo
// pair derive identical send/receive orderings (sorted by global index)
// without negotiation messages.
//
// Coefficient fields beyond the uniform benchmark stencil (anisotropy,
// jumping coefficients, stretched grids) come from grid/scenario.hpp: the
// assembly below multiplies each off-diagonal by the scenario's symmetric
// edge weight and sums all 26 weights into the diagonal, so the default
// Poisson spec reproduces the paper matrix bit-for-bit.
#pragma once

#include "base/aligned_vector.hpp"
#include "base/types.hpp"
#include "comm/halo.hpp"
#include "grid/process_grid.hpp"
#include "grid/scenario.hpp"
#include "sparse/csr.hpp"

namespace hpgmx {

/// One rank's box of the global grid.
struct GridBox {
  local_index_t nx = 0, ny = 0, nz = 0;        ///< local (owned) dims
  global_index_t ox = 0, oy = 0, oz = 0;       ///< global offset of the box
  global_index_t gnx = 0, gny = 0, gnz = 0;    ///< global dims

  [[nodiscard]] local_index_t num_local() const {
    return nx * ny * nz;
  }
  [[nodiscard]] global_index_t num_global() const {
    return gnx * gny * gnz;
  }
  [[nodiscard]] local_index_t local_id(local_index_t i, local_index_t j,
                                       local_index_t k) const {
    return i + nx * (j + ny * k);
  }
  [[nodiscard]] global_index_t global_id(global_index_t gi, global_index_t gj,
                                         global_index_t gk) const {
    return gi + gnx * (gj + gny * gk);
  }
};

/// Generation parameters: the per-rank grid, the nonsymmetry knob, and the
/// coefficient scenario.
struct ProblemParams {
  local_index_t nx = 16;
  local_index_t ny = 16;
  local_index_t nz = 16;
  /// 0 → the symmetric benchmark matrix; >0 → nonsymmetric variant.
  double gamma = 0.0;
  /// Coefficient field (default: the uniform Poisson benchmark stencil).
  /// Orthogonal to gamma — the upwind bias composes with any scenario.
  ScenarioSpec scenario;
};

/// One rank's share of a generated level: matrix, halo pattern, rhs.
struct Problem {
  GridBox box;
  ProcessGrid pgrid{1, 1, 1};
  int rank = 0;
  double gamma = 0.0;
  ScenarioSpec scenario;

  CsrMatrix<double> a;
  HaloPattern halo;
  /// Right-hand side b = A·1 (exact solution is the ones vector).
  AlignedVector<double> b;
};

/// Generate this rank's part of the problem. All ranks must pass identical
/// params; collective-free.
Problem generate_problem(const ProcessGrid& pgrid, int rank,
                         const ProblemParams& params);

/// Geometric coarsening by 2 in each dimension (requires even local dims).
struct CoarseLevel {
  Problem problem;
  /// Injection map: coarse local id → fine local id (both owned).
  AlignedVector<local_index_t> c2f;
};

CoarseLevel coarsen(const Problem& fine);

}  // namespace hpgmx
